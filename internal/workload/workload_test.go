package workload

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	same := 0
	a = NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatal("different seeds suspiciously similar")
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(1)
	keys := Uniform(r, 100_000, UniformBits)
	var max uint64
	for _, k := range keys {
		if k == 0 {
			t.Fatal("zero key generated")
		}
		if k >= 1<<UniformBits {
			t.Fatalf("key %d out of 40-bit range", k)
		}
		if k > max {
			max = k
		}
	}
	// With 100k draws the max should be near the top of the range.
	if max < (1<<UniformBits)/2 {
		t.Fatalf("max %d suspiciously small", max)
	}
}

func TestUniformMeanIsCentered(t *testing.T) {
	r := NewRNG(2)
	keys := Uniform(r, 200_000, 32)
	var sum float64
	for _, k := range keys {
		sum += float64(k)
	}
	mean := sum / float64(len(keys))
	want := float64(uint64(1) << 31)
	if math.Abs(mean-want)/want > 0.01 {
		t.Fatalf("mean %.0f deviates from %.0f", mean, want)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(3)
	z := NewZipf(r, ZipfBits, ZipfTheta)
	counts := map[uint64]int{}
	n := 200_000
	for i := 0; i < n; i++ {
		k := z.Next()
		if k == 0 || k >= 1<<ZipfBits {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// Zipfian with theta=0.99 over 2^34 items: the hottest key should
	// receive a few percent of all draws, and the number of distinct keys
	// should be far below n.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < n/100 {
		t.Fatalf("hottest key only %d/%d draws; not skewed", max, n)
	}
	if len(counts) > n*95/100 {
		t.Fatalf("%d distinct keys out of %d draws; not skewed", len(counts), n)
	}
}

func TestHotSpotFractions(t *testing.T) {
	r := NewRNG(5)
	h := NewHotSpot(r, 30, 4, 0.9)
	if got := h.Hot(); len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Fatalf("Hot() = %v, want [1 2 3 4]", got)
	}
	n := 200_000
	hotDraws := 0
	perKey := map[uint64]int{}
	for i := 0; i < n; i++ {
		k := h.Next()
		if k == 0 || k >= 1<<30 {
			t.Fatalf("key %d out of range", k)
		}
		if k <= 4 {
			hotDraws++
			perKey[k]++
		}
	}
	// 90% ± noise must land on the 4 hot keys (cold draws hitting 1..4 by
	// chance are ~0), spread roughly evenly among them.
	if f := float64(hotDraws) / float64(n); f < 0.88 || f > 0.92 {
		t.Fatalf("hot fraction %.3f, want ~0.9", f)
	}
	for k := uint64(1); k <= 4; k++ {
		if f := float64(perKey[k]) / float64(hotDraws); f < 0.2 || f > 0.3 {
			t.Fatalf("hot key %d got %.3f of hot draws, want ~0.25", k, f)
		}
	}
	// Clamps: zero hot keys becomes one, fractions clamp to [0, 1].
	all := NewHotSpot(NewRNG(6), 20, 0, 2)
	for i := 0; i < 100; i++ {
		if k := all.Next(); k != 1 {
			t.Fatalf("frac>1 clamp: drew %d, want the single hot key 1", k)
		}
	}
	none := NewHotSpot(NewRNG(7), 20, 3, -1)
	cold := 0
	for i := 0; i < 1000; i++ {
		if none.Next() > 3 {
			cold++
		}
	}
	if cold < 900 {
		t.Fatalf("frac<0 clamp: only %d/1000 cold draws", cold)
	}
	if got := HotSpotBatch(NewHotSpot(NewRNG(8), 20, 2, 0.5), 64); len(got) != 64 {
		t.Fatalf("HotSpotBatch length %d", len(got))
	}
}

func TestZetaApproxMatchesExactSmall(t *testing.T) {
	// For n below the exact cutoff the approximation IS the exact sum.
	exact := 0.0
	for i := 1; i <= 1000; i++ {
		exact += math.Pow(float64(i), -ZipfTheta)
	}
	if got := zetaApprox(1000, ZipfTheta); math.Abs(got-exact) > 1e-9 {
		t.Fatalf("zetaApprox(1000) = %f, want %f", got, exact)
	}
	// For large n the tail must be close to a longer exact sum.
	bigExact := 0.0
	for i := 1; i <= 1<<20; i++ {
		bigExact += math.Pow(float64(i), -ZipfTheta)
	}
	if got := zetaApprox(1<<20, ZipfTheta); math.Abs(got-bigExact)/bigExact > 1e-4 {
		t.Fatalf("zetaApprox(2^20) = %f, want %f", got, bigExact)
	}
}

func TestRMATSkewAndRange(t *testing.T) {
	r := NewRNG(4)
	edges := RMAT(r, 100_000, 14, DefaultRMAT())
	deg := map[uint32]int{}
	for _, e := range edges {
		if e.Src >= 1<<14 || e.Dst >= 1<<14 {
			t.Fatal("vertex out of range")
		}
		deg[e.Src]++
	}
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	avg := float64(len(edges)) / float64(len(deg))
	// Expected hottest out-degree for a=0.5,b=0.1: m*(a+b)^scale ≈ 78 vs a
	// mean of ~6.5; a Poisson (ER) tail would stay within ~3x of the mean.
	if float64(max) < 5*avg {
		t.Fatalf("max degree %d vs avg %.1f: R-MAT not skewed", max, avg)
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	r := NewRNG(5)
	n, p := 2000, 0.01
	edges := ErdosRenyi(r, n, p)
	want := float64(n) * float64(n) * p
	got := float64(len(edges))
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("got %d edges, want ~%.0f", len(edges), want)
	}
	for _, e := range edges {
		if e.Src == e.Dst {
			t.Fatal("self loop generated")
		}
		if int(e.Src) >= n || int(e.Dst) >= n {
			t.Fatal("vertex out of range")
		}
	}
}

func TestSymmetrizeAndEdgeKeys(t *testing.T) {
	edges := []Edge{{1, 2}, {3, 3}, {4, 5}}
	sym := Symmetrize(edges)
	if len(sym) != 4 {
		t.Fatalf("Symmetrize kept %d edges, want 4 (self-loop dropped)", len(sym))
	}
	keys := EdgeKeys(sym)
	if len(keys) != 4 {
		t.Fatalf("EdgeKeys = %d", len(keys))
	}
	if keys[0] != 1<<32|2 || keys[1] != 2<<32|1 {
		t.Fatalf("keys wrong: %x", keys[:2])
	}
}

func TestPaperGraphsBuild(t *testing.T) {
	for _, g := range PaperGraphs() {
		if g.Name != "ER" && g.Name != "LJ" {
			continue // keep the test fast; other graphs share the generator
		}
		edges := g.Build(42)
		if len(edges) == 0 {
			t.Fatalf("%s: no edges", g.Name)
		}
		nv := g.NumVertices()
		for _, e := range edges[:100] {
			if int(e.Src) >= nv || int(e.Dst) >= nv {
				t.Fatalf("%s: vertex out of range", g.Name)
			}
		}
	}
}

// Package workload generates the paper's evaluation inputs: 40-bit uniform
// keys, YCSB-style zipfian keys (α = 0.99, 34-bit), R-MAT edge streams
// (a=0.5, b=c=0.1, d=0.3), Erdős–Rényi graphs, and scaled synthetic
// stand-ins for the social-network graphs (§6, DESIGN.md §4).
package workload

import "math"

// RNG is a splitmix64 generator: tiny, fast, and deterministic across
// platforms, so every experiment is exactly reproducible.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next pseudorandom value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// UniformBits is the paper's microbenchmark key width: "40-bit numbers give
// a balance between the compression ratio and the number of duplicates".
const UniformBits = 40

// Uniform fills a slice with n uniform random keys in [1, 2^bits).
func Uniform(r *RNG, n, bits int) []uint64 {
	span := uint64(1)<<uint(bits) - 1
	out := make([]uint64, n)
	for i := range out {
		out[i] = 1 + r.Uint64()%span
	}
	return out
}

// Zipf generates keys from a zipfian distribution over [1, 2^bits) with the
// YCSB skew parameter. Item ranks are scrambled with a multiplicative hash
// so hot keys are spread over the key space (as YCSB does).
type Zipf struct {
	rng   *RNG
	items uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	mask  uint64
}

// ZipfTheta is the paper's skew parameter ("skew parameter α = 0.99,
// parameter taken from the YCSB").
const ZipfTheta = 0.99

// ZipfBits is the paper's zipfian key width (34-bit numbers).
const ZipfBits = 34

// NewZipf builds a generator over 2^bits items with skew theta.
func NewZipf(r *RNG, bits int, theta float64) *Zipf {
	items := uint64(1) << uint(bits)
	zetan := zetaApprox(items, theta)
	zeta2 := zetaApprox(2, theta)
	z := &Zipf{
		rng:   r,
		items: items,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(items), 1-theta)) / (1 - zeta2/zetan),
		mask:  items - 1,
	}
	return z
}

// zetaApprox approximates the generalized harmonic number H_{n,theta} with
// the exact sum of the first terms plus an Euler–Maclaurin tail — computing
// the exact sum over 2^34 items, as YCSB does incrementally, would take
// minutes.
func zetaApprox(n uint64, theta float64) float64 {
	const exact = 1 << 16
	sum := 0.0
	limit := n
	if limit > exact {
		limit = exact
	}
	for i := uint64(1); i <= limit; i++ {
		sum += math.Pow(float64(i), -theta)
	}
	if n <= exact {
		return sum
	}
	// Integral tail with the first-order Euler–Maclaurin correction.
	a, b := float64(exact), float64(n)
	tail := (math.Pow(b, 1-theta)-math.Pow(a, 1-theta))/(1-theta) +
		0.5*(math.Pow(b, -theta)-math.Pow(a, -theta))
	return sum + tail
}

// Next returns the next zipfian key in [1, 2^bits), hot ranks scrambled.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = uint64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if rank >= z.items {
		rank = z.items - 1
	}
	// Scramble the rank across the key space; keep keys nonzero.
	k := scramble(rank) & z.mask
	if k == 0 {
		k = 1
	}
	return k
}

func scramble(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

// ZipfBatch draws n zipfian keys.
func ZipfBatch(z *Zipf, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = z.Next()
	}
	return out
}

// PowerLaw draws keys from a bounded power law P(k) ∝ k^-s over
// [1, 2^bits), s > 1 (the classic zipf exponent form — unlike the YCSB
// generator above, whose rejection-free approximation needs theta < 1).
// With Scramble false, hot keys cluster at the bottom of the key space —
// the adversarial input for RangePartition, where one shard's span
// captures nearly all traffic; with Scramble true, hot ranks are spread
// over the space as YCSB does, which stresses hash partitions instead.
type PowerLaw struct {
	rng      *RNG
	scramble bool
	mask     uint64
	n        float64 // item count as float
	oneMinus float64 // 1 - s
	tailTerm float64 // (n+1)^(1-s) - 1
}

// NewPowerLaw builds a generator over [1, 2^bits) with exponent s > 1
// (values at or below 1.01 are clamped to 1.01).
func NewPowerLaw(r *RNG, bits int, s float64, scramble bool) *PowerLaw {
	if bits < 1 {
		bits = 1
	}
	if bits > 63 {
		bits = 63
	}
	if s < 1.01 {
		s = 1.01
	}
	n := float64(uint64(1)<<uint(bits)) - 1
	om := 1 - s
	return &PowerLaw{
		rng:      r,
		scramble: scramble,
		mask:     uint64(1)<<uint(bits) - 1,
		n:        n,
		oneMinus: om,
		tailTerm: math.Pow(n+1, om) - 1,
	}
}

// Next returns the next power-law key in [1, 2^bits), via inverse-CDF
// sampling of the continuous density x^-s on [1, n+1).
func (z *PowerLaw) Next() uint64 {
	u := z.rng.Float64()
	x := math.Pow(1+u*z.tailTerm, 1/z.oneMinus)
	rank := uint64(x)
	if rank < 1 {
		rank = 1
	}
	if rank > uint64(z.n) {
		rank = uint64(z.n)
	}
	if !z.scramble {
		return rank
	}
	k := scramble(rank) & z.mask
	if k == 0 {
		k = 1
	}
	return k
}

// PowerLawBatch draws n power-law keys.
func PowerLawBatch(z *PowerLaw, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = z.Next()
	}
	return out
}

// HotSpot sends a fixed fraction of traffic to k fixed hot keys (chosen
// uniformly among them) and the remainder uniformly over [1, 2^bits). It
// is the adversary rebalancing cannot fix: the hot keys are the smallest
// keys of the space (1..k, all inside one range-partition span, matching
// PowerLaw's unscrambled bottom-clustering), and no boundary move can
// subdivide the traffic to a single key — only hot-key absorption helps.
type HotSpot struct {
	rng  *RNG
	hot  []uint64
	frac float64
	bits int
}

// NewHotSpot builds a generator over [1, 2^bits) sending fraction frac of
// draws to hotKeys fixed keys (clamped to at least 1; frac clamped to
// [0, 1]).
func NewHotSpot(r *RNG, bits, hotKeys int, frac float64) *HotSpot {
	if bits < 1 {
		bits = 1
	}
	if bits > 63 {
		bits = 63
	}
	if hotKeys < 1 {
		hotKeys = 1
	}
	if max := int(uint64(1)<<uint(bits)) - 1; hotKeys > max {
		hotKeys = max
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	hot := make([]uint64, hotKeys)
	for i := range hot {
		hot[i] = uint64(i + 1)
	}
	return &HotSpot{rng: r, hot: hot, frac: frac, bits: bits}
}

// Hot returns the generator's fixed hot keys (1..k, ascending). Callers
// must not mutate the slice.
func (h *HotSpot) Hot() []uint64 { return h.hot }

// Next returns the next key: one of the hot keys with probability frac,
// else uniform over [1, 2^bits).
func (h *HotSpot) Next() uint64 {
	if h.rng.Float64() < h.frac {
		return h.hot[h.rng.Intn(len(h.hot))]
	}
	mask := uint64(1)<<uint(h.bits) - 1
	k := h.rng.Uint64() & mask
	if k == 0 {
		k = 1
	}
	return k
}

// HotSpotBatch draws n hot-spot keys.
func HotSpotBatch(h *HotSpot, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = h.Next()
	}
	return out
}

// Edge is a directed graph edge.
type Edge struct {
	Src, Dst uint32
}

// RMATParams are the quadrant probabilities of the R-MAT generator; the
// defaults match the paper's insert stream ("a=0.5, b=c=0.1, d=0.3 to match
// the distribution from the PaC-tree paper").
type RMATParams struct {
	A, B, C float64 // D = 1-A-B-C
}

// DefaultRMAT returns the paper's R-MAT parameters.
func DefaultRMAT() RMATParams { return RMATParams{A: 0.5, B: 0.1, C: 0.1} }

// RMAT samples n directed edges over 2^scale vertices (duplicates and
// self-loops possible, as in the paper's insert streams).
func RMAT(r *RNG, n int, scale int, p RMATParams) []Edge {
	out := make([]Edge, n)
	for i := range out {
		out[i] = rmatOne(r, scale, p)
	}
	return out
}

func rmatOne(r *RNG, scale int, p RMATParams) Edge {
	var src, dst uint32
	for bit := 0; bit < scale; bit++ {
		u := r.Float64()
		switch {
		case u < p.A:
			// top-left: no bits set
		case u < p.A+p.B:
			dst |= 1 << uint(bit)
		case u < p.A+p.B+p.C:
			src |= 1 << uint(bit)
		default:
			src |= 1 << uint(bit)
			dst |= 1 << uint(bit)
		}
	}
	return Edge{Src: src, Dst: dst}
}

// ErdosRenyi generates G(n, p) as a directed edge list via geometric
// skipping, so the cost is proportional to the number of edges.
func ErdosRenyi(r *RNG, n int, p float64) []Edge {
	if p <= 0 || n <= 0 {
		return nil
	}
	var edges []Edge
	logq := math.Log1p(-p)
	total := uint64(n) * uint64(n)
	pos := uint64(0)
	for {
		skip := uint64(math.Floor(math.Log(1-r.Float64()) / logq))
		pos += skip
		if pos >= total {
			return edges
		}
		src := uint32(pos / uint64(n))
		dst := uint32(pos % uint64(n))
		if src != dst {
			edges = append(edges, Edge{Src: src, Dst: dst})
		}
		pos++
	}
}

// Symmetrize returns the undirected closure of an edge list (both
// directions for every edge, self-loops dropped), which is how the graph
// systems under test store undirected graphs.
func Symmetrize(edges []Edge) []Edge {
	out := make([]Edge, 0, 2*len(edges))
	for _, e := range edges {
		if e.Src == e.Dst {
			continue
		}
		out = append(out, e, Edge{Src: e.Dst, Dst: e.Src})
	}
	return out
}

// EdgeKeys packs edges into the 64-bit keys F-Graph stores: src in the
// upper 32 bits, dst in the lower (§6: "F-Graph stores edges in 64-bit
// words"). Key 0 (edge 0->0) cannot occur because self-loops are dropped
// by Symmetrize and vertex pairs (0,0) are filtered here.
func EdgeKeys(edges []Edge) []uint64 {
	out := make([]uint64, 0, len(edges))
	for _, e := range edges {
		k := uint64(e.Src)<<32 | uint64(e.Dst)
		if k == 0 {
			continue
		}
		out = append(out, k)
	}
	return out
}

// SyntheticGraph describes one scaled stand-in for the paper's datasets
// (Table 7). Vertex/edge counts are scaled down ~100x; skew is preserved by
// the generator choice.
type SyntheticGraph struct {
	Name    string
	Kind    string // "rmat" or "er"
	Scale   int    // log2 of vertex count (rmat)
	Edges   int    // directed edges to sample before symmetrizing
	N       int    // vertices (er)
	P       float64
	Comment string
}

// PaperGraphs lists the scaled stand-ins for LJ, CO, ER, TW, and FS.
func PaperGraphs() []SyntheticGraph {
	return []SyntheticGraph{
		{Name: "LJ", Kind: "rmat", Scale: 16, Edges: 860_000, Comment: "LiveJournal: 4.8M/86M scaled 100x"},
		{Name: "CO", Kind: "rmat", Scale: 15, Edges: 2_340_000, Comment: "Orkut: 3.1M/234M scaled 100x"},
		{Name: "ER", Kind: "er", N: 100_000, P: 5e-4, Comment: "Erdős–Rényi n=1e7 p=5e-6 scaled 100x"},
		{Name: "TW", Kind: "rmat", Scale: 17, Edges: 4_000_000, Comment: "Twitter: 62M/2405M scaled ~600x"},
		{Name: "FS", Kind: "rmat", Scale: 17, Edges: 6_000_000, Comment: "Friendster: 125M/3612M scaled ~600x"},
	}
}

// Build materializes a synthetic graph as a symmetrized edge list.
func (g SyntheticGraph) Build(seed uint64) []Edge {
	r := NewRNG(seed)
	switch g.Kind {
	case "er":
		return Symmetrize(ErdosRenyi(r, g.N, g.P))
	default:
		return Symmetrize(RMAT(r, g.Edges, g.Scale, DefaultRMAT()))
	}
}

// NumVertices returns the vertex-id space of the synthetic graph.
func (g SyntheticGraph) NumVertices() int {
	if g.Kind == "er" {
		return g.N
	}
	return 1 << uint(g.Scale)
}

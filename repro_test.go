package repro_test

import (
	"slices"
	"testing"

	"repro"
)

// The facade tests exercise the public API exactly the way a downstream
// user would, without touching internal packages.

func TestSetQuickstart(t *testing.T) {
	s := repro.NewSet(nil)
	if added := s.InsertBatch([]uint64{5, 1, 9, 5}, false); added != 3 {
		t.Fatalf("added = %d", added)
	}
	if !s.Has(5) || s.Has(2) {
		t.Fatal("membership wrong")
	}
	var got []uint64
	s.MapRange(1, 6, func(k uint64) bool {
		got = append(got, k)
		return true
	})
	if !slices.Equal(got, []uint64{1, 5}) {
		t.Fatalf("MapRange = %v", got)
	}
	if s.Sum() != 15 {
		t.Fatalf("Sum = %d", s.Sum())
	}
}

func TestPMAAndSetAgree(t *testing.T) {
	r := repro.NewRNG(1)
	// 32-bit keys at 50k elements give the same delta width (3 bytes) as
	// the paper's 40-bit keys at 1M+, where the >=2x space claim holds.
	keys := repro.UniformKeys(r, 50_000, 32)
	s := repro.NewSet(nil)
	p := repro.NewPMA(nil)
	s.InsertBatch(keys, false)
	p.InsertBatch(keys, false)
	if s.Len() != p.Len() || s.Sum() != p.Sum() {
		t.Fatalf("Set(%d,%d) vs PMA(%d,%d)", s.Len(), s.Sum(), p.Len(), p.Sum())
	}
	if s.SizeBytes()*2 > p.SizeBytes() {
		t.Fatalf("compression ratio regressed: %d vs %d bytes", s.SizeBytes(), p.SizeBytes())
	}
}

func TestFGraphEndToEnd(t *testing.T) {
	r := repro.NewRNG(2)
	edges := repro.Symmetrize(repro.RMATEdges(r, 20_000, 10))
	g := repro.FGraphFromEdges(1<<10, edges)
	g.EnsureIndex()

	labels := repro.ConnectedComponents(g)
	if len(labels) != 1<<10 {
		t.Fatal("label vector size wrong")
	}
	rank := repro.PageRank(g, 10)
	sum := 0.0
	for _, x := range rank {
		sum += x
	}
	if sum < 0.5 || sum > 1.5 {
		t.Fatalf("PR mass %f", sum)
	}
	bc := repro.BC(g, 0)
	if len(bc) != 1<<10 || bc[0] != 0 {
		t.Fatal("BC output wrong")
	}

	// Streaming update then re-query.
	added := g.InsertEdges(repro.Symmetrize(repro.RMATEdges(r, 5000, 10)))
	if added <= 0 {
		t.Fatal("no edges added")
	}
	g.EnsureIndex()
	if repro.ConnectedComponents(g) == nil {
		t.Fatal("CC after update failed")
	}
}

func TestAsyncShardedSet(t *testing.T) {
	s := repro.NewAsyncShardedSet(4, nil)
	defer s.Close()
	r := repro.NewRNG(3)
	ref := repro.NewSet(nil)
	for i := 0; i < 30; i++ {
		batch := repro.UniformKeys(r, 2_000, 24)
		s.InsertBatchAsync(batch, false)
		ref.InsertBatch(batch, false)
	}
	s.Flush() // read barrier: everything enqueued above is now visible
	if s.Len() != ref.Len() || s.Sum() != ref.Sum() {
		t.Fatalf("after Flush: Len/Sum = %d/%d, want %d/%d", s.Len(), s.Sum(), ref.Len(), ref.Sum())
	}
	// Synchronous batches on an async set keep exact counts.
	if n := s.InsertBatch([]uint64{10, 20, 30}, true); n < 0 || n > 3 {
		t.Fatalf("sync InsertBatch on async set returned %d", n)
	}
	if !s.Has(10) || !s.Has(20) || !s.Has(30) {
		t.Fatal("sync insert on async set not visible on return")
	}
	st := s.IngestStats()
	if st.EnqueuedBatches == 0 || st.AppliedKeys != st.EnqueuedKeys {
		t.Fatalf("ingest stats inconsistent after Flush: %+v", st)
	}
}

func TestSortedConstructors(t *testing.T) {
	keys := []uint64{2, 4, 6}
	s := repro.SetFromSorted(keys, nil)
	p := repro.PMAFromSorted(keys, nil)
	if s.Len() != 3 || p.Len() != 3 {
		t.Fatal("constructors wrong")
	}
	if v, ok := s.Next(3); !ok || v != 4 {
		t.Fatal("Next wrong")
	}
}

// TestShardedSnapshot exercises the snapshot API the way a downstream
// analytics reader would: capture a frozen cut while async ingest keeps
// running, scan it without a flush barrier, and rely on its immutability.
func TestShardedSnapshot(t *testing.T) {
	s := repro.NewAsyncShardedSet(4, nil)
	defer s.Close()
	r := repro.NewRNG(7)
	ref := repro.NewSet(nil)
	for i := 0; i < 10; i++ {
		batch := repro.UniformKeys(r, 2_000, 24)
		s.InsertBatchAsync(batch, false)
		ref.InsertBatch(batch, false)
	}
	s.Flush()
	snap := s.Snapshot()
	if snap.Len() != ref.Len() || snap.Sum() != ref.Sum() {
		t.Fatalf("snapshot = %d/%d, want %d/%d", snap.Len(), snap.Sum(), ref.Len(), ref.Sum())
	}

	// Keep ingesting: the old snapshot must not move while fresh captures do.
	more := repro.UniformKeys(r, 5_000, 24)
	wantLen, wantSum := snap.Len(), snap.Sum()
	s.InsertBatchAsync(more, false)
	s.Flush()
	if snap.Len() != wantLen || snap.Sum() != wantSum {
		t.Fatal("frozen snapshot drifted under later ingest")
	}
	ref.InsertBatch(more, false)
	fresh := s.Snapshot()
	if fresh.Len() != ref.Len() || fresh.Sum() != ref.Sum() {
		t.Fatalf("fresh snapshot = %d/%d, want %d/%d", fresh.Len(), fresh.Sum(), ref.Len(), ref.Sum())
	}

	// Snapshot reads are mutually consistent and ordered.
	keys := fresh.Keys()
	if len(keys) != fresh.Len() || !slices.IsSorted(keys) {
		t.Fatal("snapshot Keys inconsistent")
	}
	if v, ok := fresh.Min(); !ok || v != keys[0] {
		t.Fatal("snapshot Min wrong")
	}
	st := s.SnapshotStats()
	if st.Captures < 2 || st.Publishes == 0 {
		t.Fatalf("snapshot stats inconsistent: %+v", st)
	}

	// The snapshot outlives Close.
	s.Close()
	if fresh.Len() != ref.Len() {
		t.Fatal("snapshot stopped working after Close")
	}
}

func TestDurableShardedSet(t *testing.T) {
	dir := t.TempDir()
	s, err := repro.OpenDurableShardedSet(dir, 4, &repro.ShardedSetOptions{SyncEvery: 1})
	if err != nil {
		t.Fatalf("OpenDurableShardedSet: %v", err)
	}
	if !s.Durable() {
		t.Fatal("durable set does not report Durable")
	}
	r := repro.NewRNG(3)
	keys := repro.UniformKeys(r, 20_000, 40)
	s.InsertBatch(keys, false)
	s.RemoveBatchAsync(keys[:5_000], false)
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	s.InsertBatchAsync(keys[:2_000], false)
	s.Flush()
	want := s.Keys()
	st := s.PersistStats()
	if st.AppendedBatches == 0 || st.Fsyncs == 0 || st.Checkpoints == 0 || st.CheckpointBytes == 0 {
		t.Fatalf("durability counters missing: %+v", st)
	}
	s.Close()

	// Restart from disk: checkpoint plus WAL tail must restore the exact
	// acknowledged state.
	s2, err := repro.OpenDurableShardedSet(dir, 4, &repro.ShardedSetOptions{SyncEvery: 1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if got := s2.Keys(); !slices.Equal(got, want) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(want))
	}
	if st := s2.PersistStats(); st.RecoveredKeys != uint64(len(want)) {
		t.Fatalf("RecoveredKeys = %d, want %d", st.RecoveredKeys, len(want))
	}

	// Geometry is pinned by the manifest.
	if _, err := repro.OpenDurableShardedSet(dir, 8, nil); err == nil {
		t.Fatal("reopen with a different shard count succeeded")
	}
}

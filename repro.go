// Package repro is the public API of this reproduction of "CPMA: An
// Efficient Batch-Parallel Compressed Set Without Pointers" (PPoPP 2024).
//
// It exposes five layers:
//
//   - Set — the batch-parallel Compressed Packed Memory Array (the paper's
//     primary contribution): a compressed, dynamic, ordered set of uint64
//     keys with parallel batch updates and cache-friendly range maps.
//   - PMA — the uncompressed batch-parallel Packed Memory Array.
//   - ShardedSet — a concurrent front-end over P single-writer Sets, for
//     servers with many mutating clients.
//   - FGraph — the F-Graph dynamic-graph system built on a single Set, with
//     the PageRank, ConnectedComponents, and BC kernels.
//   - ShardedFGraph — F-Graph on the concurrent pipeline: edge keys striped
//     across a range-partitioned ShardedSet, async edge ingest, analytics
//     served from immutable epoch-snapshot views.
//
// Keys are nonzero uint64 values (0 is reserved as the empty-cell
// sentinel).
//
// # Concurrency
//
// Set, PMA, and FGraph are single-writer: batch operations parallelize
// internally, but concurrent mutation is not supported — batch-parallel,
// not concurrent, as defined in §2 of the paper.
//
// ShardedSet relaxes that at the system level while preserving it per
// structure: keys are partitioned across P shards, each one Set guarded by
// its own RWMutex, so at most one writer ever mutates a given shard (the
// single-writer-per-shard contract) while writers on different shards and
// any number of readers proceed concurrently. Batches scatter into
// per-shard sub-batches applied by one writer goroutine per shard, each of
// which still runs the Set's parallel batch algorithm inside the shard.
// Cross-shard reads (Len, Sum, Keys, multi-shard MapRange, Next, Max)
// observe one atomic cut: the overlapping shard read locks are held
// simultaneously for the capture, so a concurrent writer can never tear
// the aggregate view. For long scans that must not block (or be blocked
// by) writers, (*ShardedSet).Snapshot captures a ShardedSnapshot — a
// frozen epoch cut published by the shard writers via copy-on-publish
// Set.Clone handles — whose reads are lock-free, mutually consistent, and
// stable, and which remains valid after Close. Snapshots observe
// published state and are read-your-flushes (not read-your-writes):
// capture after Flush to guarantee coverage of your own preceding
// mutations on an async set.
//
// NewAsyncShardedSet (or ShardedSetOptions{Async: true}) upgrades the
// ShardedSet to a fully asynchronous ingest pipeline: each shard owns a
// bounded mailbox drained by a dedicated writer goroutine that coalesces
// adjacent pending batches into one large merged apply, recovering the
// batch-size amortization of Figure 1 under many small concurrent
// batches. InsertBatchAsync/RemoveBatchAsync enqueue and return
// immediately (a full mailbox applies backpressure), Flush is the read
// barrier, and Close drains and stops the writers. See the
// repro/internal/shard package documentation for the precise consistency
// contract.
//
// Range-partitioned sets route through an authoritative sorted span
// boundary table rather than fixed-width arithmetic, and
// ShardedSetOptions{Rebalance: true} makes the spans live: a background
// monitor samples per-shard key counts and, whenever the max/mean ratio
// exceeds MaxSkew, hands span boundaries between adjacent shards —
// quiescing only the two affected mailbox writers while every other
// shard keeps ingesting — so zipfian and other skewed key streams stop
// bottlenecking on one hot shard's single writer.
// (*ShardedSet).RebalanceOnce triggers a sweep manually, Bounds and
// LoadRatio expose the table and the current balance, and
// ShardRebalanceStats counts the moves. On a durable set every move is
// journaled as a WAL barrier plus a boundary-table update, so crash
// recovery replays against exactly the spans the history was routed
// with. Rebalancing requires the async pipeline and RangePartition.
//
// Neither partitioning nor rebalancing helps when the skew concentrates
// on a handful of individual keys — all traffic for one key routes to one
// shard's writer. ShardedSetOptions{HotKeys: true} adds a per-shard
// hot-key absorber to the async pipeline: a streaming top-k detector
// promotes the heaviest keys, and promoted traffic collapses into
// per-key absorbed state (a membership bit plus a last-wins pending op)
// instead of repeatedly re-proving idempotent updates against the CPMA.
// Reads stay exact — point and range reads resolve through the overlay,
// so an absorbed insert or remove is visible under the same contract as
// an applied one — and every publish (drain, Flush, Snapshot barrier,
// checkpoint) first reconciles absorbed state into the structure, so
// published handles and durable state never contain half-absorbed keys:
// on a durable set the reconciled batch is WAL-appended before it
// applies, and recovery replays it like any other batch. Keys that cool
// off demote back to the ordinary path. ShardIngestStats reports the
// promotion/absorption/reconcile counters.
//
// # Graph streaming
//
// FGraph is the paper's phased design: one writer, mutations and analytics
// strictly alternating, with the vertex index rebuilt after each batch.
// NewShardedFGraph removes the phasing. Edge keys (src<<32|dst) stripe
// across a range-partitioned async ShardedSet — range partitioning by key
// is vertex striping for free, each shard owning a contiguous vertex range
// — so InsertEdges/DeleteEdges enqueue and return while per-shard writers
// apply batches, and (*ShardedFGraph).View captures an immutable FGraphView
// with no flush barrier: one epoch-snapshot cut across the shards, the §6
// vertex index rebuilt by a parallel pass over the frozen leaves. The
// kernels (PageRank, ConnectedComponents, BC, plus BFS inside the
// EdgeMap machinery) run against the view concurrently with ingest and
// return results bit-identical to an FGraph holding the same edge set —
// PageRank included, at any shard count, by the deterministic run-ownership
// flat scan.
//
// A view is read-your-flushes, not read-your-writes: it covers a FIFO
// prefix of each shard's applied batches (a frontier cut — shards may sit
// at different depths of the stream); Flush first when a view must cover
// everything previously enqueued. FGraphView.LagKeys and Age report the
// snapshot staleness; views stay valid forever, including after Close.
// The one unstorable edge is (0,0), which packs to the reserved key 0:
// ShardedFGraph rejects any batch containing it with ErrEdgeZeroZero
// (FGraph silently drops it, matching Symmetrize's self-loop rule).
//
// # Durability
//
// OpenDurableShardedSet adds crash durability to the async pipeline,
// exploiting the paper's headline property: a CPMA has no pointers — its
// whole state is flat slabs — so a checkpoint is a raw slab dump of a
// frozen snapshot handle, with no traversal and no pointer fixup on
// either side. Each shard's mailbox writer appends every coalesced batch
// to a per-shard CRC-framed write-ahead log before applying it; a
// background checkpointer serializes the writer-published snapshot
// handles off the hot path and truncates the log prefix they cover; on
// open, each shard loads its newest valid checkpoint and replays the log
// tail, truncating torn records at the first bad CRC.
//
// The contract has three durability levels (see repro/internal/persist
// for the fine print): an acknowledged mutation is logged but fsynced
// only per the ShardedSetOptions.SyncEvery/SyncBytes group-commit knobs;
// after Flush returns, everything previously enqueued is applied and
// fsynced (set SyncEvery=1 to make every acknowledged batch durable);
// after Checkpoint returns, recovery work is bounded by the log tail
// written since. Recovery restores, per shard, an exact prefix of the
// acknowledged batch history: synced batches are never lost and torn
// tails are cleanly truncated. The on-disk formats (manifest, WAL
// segments, checkpoints) are versioned via magics; mismatched versions or
// set geometry (shard count, partition, key bits) are rejected at open.
//
// # Replication
//
// OpenPrimary and OpenFollower turn a durable sharded set into a
// primary/replica group: the primary streams its sealed per-shard WAL
// records (and, for fresh or lagging followers, whole checkpoint-chain
// states — another payoff of the pointer-free slab format, which ships as
// flat bytes) to read-only followers that replay them and serve the full
// snapshot and live read API. PairReplica wires a follower in process;
// ServeReplication/DialPrimary do the same over a length-prefixed socket
// protocol with resume-from-position on reconnect.
//
// The contract (repro/internal/repl has the fine print): each follower
// shard is always an exact prefix of the primary's acknowledged, fsynced
// record history for that shard — the shipper never reads past the
// primary's fsync seal, the applier enforces gap-free sequence
// continuity, and a follower that cannot keep the invariant stops with an
// error rather than approximating. Cross-shard, a follower is eventually
// consistent (shards ship independently); when caught up against a
// quiescent primary it equals the primary exactly, boundary tables
// included. Followers reject client mutations by panic: their state is a
// pure function of the replicated log.
//
// # Observability
//
// Every pipeline stage is instrumented with always-on atomic counters and
// lock-free log-bucketed latency histograms (mailbox residency, drain,
// coalesce width, publish/clone, WAL append and fsync stall, checkpoint,
// rebalance quiesce/move, hot-key reconcile, replication ship/apply).
// NewMetrics builds a named registry, Observe registers a ShardedSet's
// full metric surface into it (a durable set's journal and an attached
// ReplPrimary/ReplFollower register through the same path), and
// ServeMetrics exposes the strictly opt-in HTTP endpoint: Prometheus text
// on /metrics, JSON summaries with p50/p90/p99/p999 on /statz, the
// per-shard lifecycle event-trace rings on /tracez, and net/http/pprof
// under /debug/pprof/.
//
// The scrape contract: reading metrics never blocks the pipeline — every
// sample is an atomic load or a scrape-time stats snapshot, so /metrics
// stays responsive during async ingest, live rebalances, and checkpoints
// (counters mid-rebalance are exact per field; a scrape is not one atomic
// cut across fields). Counters are monotone over a set's lifetime.
// During and after Close the registry stays readable and returns final
// values; a scrape racing Close may miss the last drain's increments
// until Close returns, after which totals are stable. Histograms record
// into power-of-two buckets (quantiles are bucket-interpolated, exact to
// within a factor of two) and one recording costs three atomic adds — no
// locks, no allocation, safe from every goroutine.
//
// Quick start:
//
//	s := repro.NewSet(nil)
//	s.InsertBatch([]uint64{5, 1, 9}, false)
//	s.MapRange(1, 6, func(k uint64) bool { fmt.Println(k); return true })
package repro

import (
	"net"

	"repro/internal/cpma"
	"repro/internal/fgraph"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/pma"
	"repro/internal/repl"
	"repro/internal/shard"
	"repro/internal/workload"
)

// Set is the batch-parallel Compressed Packed Memory Array (CPMA).
type Set = cpma.CPMA

// SetOptions configures a Set (growing factor, leaf size, batch
// thresholds, density bounds).
type SetOptions = cpma.Options

// NewSet returns an empty CPMA; opts may be nil for the paper's defaults
// (growing factor 1.2, auto leaf size).
func NewSet(opts *SetOptions) *Set { return cpma.New(opts) }

// SetFromSorted builds a CPMA from sorted, duplicate-free, nonzero keys.
func SetFromSorted(keys []uint64, opts *SetOptions) *Set { return cpma.FromSorted(keys, opts) }

// ShardedSet is a concurrent set assembled from P single-writer Sets
// behind per-shard RWMutexes (see the package documentation's concurrency
// contract).
type ShardedSet = shard.Sharded

// ShardedSetOptions configures a ShardedSet beyond NewShardedSet's
// defaults: the partitioning policy (hash or contiguous key ranges), the
// expected key width for range partitioning, per-shard Set options, and
// the asynchronous ingest pipeline (Async, MailboxDepth, CoalesceMax,
// FlushReads).
type ShardedSetOptions = shard.Options

// ShardIngestStats reports a ShardedSet's batch traffic: sub-batches
// enqueued by clients versus merged applies executed by the shard
// writers; the ratio of the two mean batch sizes is the coalescing win.
type ShardIngestStats = shard.IngestStats

// ShardedSnapshot is a frozen, immutable view of a ShardedSet captured by
// its Snapshot method: one epoch cut across all shards serving the full
// read API (Len, Sum, RangeSum, Has, Next, Min/Max, Keys, Map, MapRange)
// off frozen Sets with no locks. Scans on a snapshot run concurrently with
// ingest — they neither block writers nor observe in-flight batches — and
// a snapshot keeps working after the set is Closed.
type ShardedSnapshot = shard.Snapshot

// ShardSnapshotStats reports the snapshot machinery's work: per-shard
// epoch advances, published frozen handles (each a Set.Clone), the bytes
// those clones copied, and Snapshot captures.
type ShardSnapshotStats = shard.SnapshotStats

// ShardRebalanceStats reports the live span rebalancer's work: skew
// checks, boundary moves, keys moved between shards, and the current
// router generation.
type ShardRebalanceStats = shard.RebalanceStats

// NewShardedSet returns a concurrently usable set of `shards`
// hash-partitioned Sets; opts configures each shard's Set and may be nil
// for the paper's defaults. Use NewShardedSetWith to select range
// partitioning or the async pipeline.
func NewShardedSet(shards int, opts *SetOptions) *ShardedSet {
	return shard.New(shards, &shard.Options{Set: opts})
}

// NewAsyncShardedSet returns a ShardedSet running the asynchronous ingest
// pipeline with default mailbox tuning: InsertBatchAsync/RemoveBatchAsync
// enqueue without waiting, per-shard writers coalesce pending batches,
// Flush establishes the read barrier, and Close must be called to stop
// the writers. opts configures each shard's Set and may be nil.
func NewAsyncShardedSet(shards int, opts *SetOptions) *ShardedSet {
	return shard.New(shards, &shard.Options{Set: opts, Async: true})
}

// NewShardedSetWith returns a ShardedSet with full control over
// partitioning and the async pipeline; opts may be nil. It builds
// in-memory sets only: opts.Dir must be empty (use OpenDurableShardedSet
// for a durable set — this constructor cannot report recovery errors).
func NewShardedSetWith(shards int, opts *ShardedSetOptions) *ShardedSet {
	return shard.New(shards, opts)
}

// ShardPersistStats reports a durable ShardedSet's journal and checkpoint
// work: WAL records/bytes/fsyncs, checkpoints and their encoded slab
// bytes (comparable with SizeBytes and the snapshot CloneBytes), WAL
// segments truncated behind checkpoints, and what recovery did at open
// (keys recovered, batches replayed, torn bytes discarded).
type ShardPersistStats = shard.PersistStats

// OpenDurableShardedSet opens (creating if absent) the durable sharded
// set stored under dir and returns it recovered and running: an async
// ShardedSet whose mailbox writers append every batch to a per-shard
// write-ahead log before applying it, with slab checkpoints written off
// the hot path. opts may be nil; its Dir field is overridden by dir,
// Async is implied, and SyncEvery/SyncBytes/CheckpointEveryBatches tune
// the group-commit and checkpoint cadence (see the package documentation
// for the durability contract). The set's Checkpoint method is the
// durability barrier, PersistStats reports the journal counters, and
// Close fsyncs and closes the store; Close cannot return an error, so
// check PersistErr after it — a non-nil result means a late fsync failed
// and the unsynced tail may not have landed. Reopening a directory with
// a different shard count, partition, or key width is an error.
func OpenDurableShardedSet(dir string, shards int, opts *ShardedSetOptions) (*ShardedSet, error) {
	var o ShardedSetOptions
	if opts != nil {
		o = *opts
	}
	o.Dir = dir
	s, _, err := persist.OpenSharded(shards, &o)
	return s, err
}

// ReplPrimary is the shipping side of WAL replication: it wraps a durable
// ShardedSet and streams sealed records, bootstrap states, and boundary
// tables to followers over in-process links (PairReplica) and socket
// connections (ServeReplication). ReplStats reports its counters.
type ReplPrimary = repl.Primary

// ReplFollower is the replay side: a read-only replica ShardedSet plus
// per-shard replication positions. Reads go through Set or Snapshot;
// client mutations panic. One link (PairReplica or DialPrimary) may drive
// a follower at a time; across links it resumes from its positions.
type ReplFollower = repl.Follower

// ReplLink is a running in-process replication link (PairReplica).
type ReplLink = repl.Link

// ReplConn is a follower's live socket connection to a serving primary
// (DialPrimary).
type ReplConn = repl.Conn

// ReplOptions tunes a replication link's tail poll interval and read
// batch size; nil selects the defaults.
type ReplOptions = repl.Options

// ReplStats reports a primary's shipping counters (live links, records
// and keys shipped, bootstraps, boundary-table ships, and the largest
// sealed-but-unshipped lag across links).
type ReplStats = repl.ReplStats

// ReplFollowerStats reports a follower's replay counters.
type ReplFollowerStats = repl.FollowerStats

// OpenPrimary opens (creating if absent) the durable sharded set under
// dir, exactly as OpenDurableShardedSet does, and wraps it as a
// replication primary. The returned set is the one to mutate and close
// (closing it ends replication); the primary hands its WAL to followers
// wired up with PairReplica or ServeReplication.
func OpenPrimary(dir string, shards int, opts *ShardedSetOptions) (*ShardedSet, *ReplPrimary, error) {
	var o ShardedSetOptions
	if opts != nil {
		o = *opts
	}
	o.Dir = dir
	s, st, err := persist.OpenSharded(shards, &o)
	if err != nil {
		return nil, nil, err
	}
	pr, err := repl.NewPrimary(s, st)
	if err != nil {
		s.Close()
		return nil, nil, err
	}
	return s, pr, nil
}

// OpenFollower builds an in-memory read-only follower with the primary's
// geometry: shards, opts.Partition, opts.KeyBits, and (for range
// partitions) the same seed Bounds/BoundsGen must match the primary's —
// links verify and reject mismatches. Later boundary moves replicate
// automatically. opts may be nil for a hash-partitioned primary's
// defaults.
func OpenFollower(shards int, opts *ShardedSetOptions) *ReplFollower {
	return repl.NewFollower(shards, opts)
}

// PairReplica attaches a follower to a primary in the same process and
// starts shipping: catch-up (bootstrapping from the checkpoint chain when
// needed), then tailing until Close.
func PairReplica(pr *ReplPrimary, f *ReplFollower, opts *ReplOptions) (*ReplLink, error) {
	return repl.Pair(pr, f, opts)
}

// ServeReplication accepts follower connections on ln and ships to each;
// it blocks until the listener closes. DialPrimary is the client side.
func ServeReplication(ln net.Listener, pr *ReplPrimary, opts *ReplOptions) error {
	return repl.Serve(ln, pr, opts)
}

// DialPrimary connects a follower to a serving primary and replays its
// stream until the connection closes or fails; reconnecting resumes from
// the follower's positions.
func DialPrimary(addr string, f *ReplFollower) (*ReplConn, error) {
	return repl.Dial(addr, f)
}

// Metrics is a named metrics registry: counters, gauges, and lock-free
// log-bucketed latency histograms, scraped via WriteProm (Prometheus
// text) and WriteStatz (JSON with p50/p90/p99/p999) or served by
// ServeMetrics. Registering two metrics under one name panics.
type Metrics = obs.Registry

// MetricsServer is the opt-in HTTP observability endpoint started by
// ServeMetrics: /metrics, /statz, /tracez, and /debug/pprof/.
type MetricsServer = obs.Server

// MetricsHistogram is one lock-free latency histogram: power-of-two
// buckets, three atomic adds per Record, mergeable snapshots with
// interpolated quantiles.
type MetricsHistogram = obs.Histogram

// EventTrace is a set of fixed-size per-shard ring buffers recording
// pipeline lifecycle events (drain, publish, checkpoint, promote, demote,
// move, ship, bootstrap, apply) with epoch and generation stamps;
// (*ShardedSet).Trace returns the live one and /tracez dumps it.
type EventTrace = obs.Trace

// NewMetrics builds an empty named registry.
func NewMetrics(name string) *Metrics { return obs.NewRegistry(name) }

// Observe registers every metric a ShardedSet exposes into m under the
// given prefix ("" means "cpma"): the pipeline stage histograms, the
// ingest/snapshot/rebalance stats counters, and — on a durable set — the
// journal's WAL append/fsync/checkpoint histograms and persist counters.
// Call once per (set, registry): duplicate names panic by contract.
func Observe(s *ShardedSet, m *Metrics, prefix string) { s.RegisterMetrics(m, prefix) }

// ServeMetrics starts the HTTP observability endpoint for m on addr
// (host:port; port 0 picks one — Addr reports it). The endpoint is
// strictly opt-in and scrapes never block the pipeline; see the package
// documentation's observability contract. Close the returned server to
// stop listening.
func ServeMetrics(addr string, m *Metrics) (*MetricsServer, error) { return obs.Serve(addr, m) }

// PMA is the uncompressed batch-parallel Packed Memory Array.
type PMA = pma.PMA

// PMAOptions configures a PMA.
type PMAOptions = pma.Options

// NewPMA returns an empty PMA; opts may be nil for defaults.
func NewPMA(opts *PMAOptions) *PMA { return pma.New(opts) }

// PMAFromSorted builds a PMA from sorted, duplicate-free, nonzero keys.
func PMAFromSorted(keys []uint64, opts *PMAOptions) *PMA { return pma.FromSorted(keys, opts) }

// FGraph is the F-Graph dynamic-graph system: the whole graph in one CPMA.
type FGraph = fgraph.Graph

// NewFGraph returns an empty graph over numVertices vertex ids.
func NewFGraph(numVertices int) *FGraph { return fgraph.New(numVertices, nil) }

// FGraphFromEdges builds a graph from a directed edge list (use Symmetrize
// for undirected graphs).
func FGraphFromEdges(numVertices int, edges []Edge) *FGraph {
	return fgraph.FromEdges(numVertices, edges, nil)
}

// ShardedFGraph is F-Graph on the concurrent sharded pipeline: async edge
// ingest through per-shard mailbox writers, analytics against immutable
// epoch-snapshot FGraphViews — no phasing (see the package documentation's
// graph-streaming contract).
type ShardedFGraph = fgraph.Sharded

// ShardedFGraphOptions tunes a ShardedFGraph (per-shard Set options,
// mailbox depth, live vertex-range rebalancing).
type ShardedFGraphOptions = fgraph.ShardedOptions

// FGraphView is an immutable graph over one epoch-snapshot cut of a
// ShardedFGraph, with the vertex index rebuilt at capture; it implements
// Graph, stays valid after Close, and reports its staleness via LagKeys
// and Age.
type FGraphView = fgraph.View

// ErrEdgeZeroZero is returned by ShardedFGraph mutation calls whose batch
// contains the edge (0,0) — it packs to the reserved key 0 and cannot be
// stored.
var ErrEdgeZeroZero = fgraph.ErrEdgeZeroZero

// NewShardedFGraph returns an empty streaming graph over numVertices
// vertex ids striped across `shards` single-writer CPMAs; opts may be nil.
func NewShardedFGraph(numVertices, shards int, opts *ShardedFGraphOptions) *ShardedFGraph {
	return fgraph.NewSharded(numVertices, shards, opts)
}

// EdgeStream is a deterministic streaming-graph workload: R-MAT insert
// batches interleaved with delete batches sampled from previously inserted
// edges. It never emits the unstorable edge (0,0).
type EdgeStream = workload.EdgeStream

// NewEdgeStream seeds an edge stream over 2^scale vertices; deleteFrac of
// each batch is emitted as deletions of earlier inserts.
func NewEdgeStream(seed uint64, scale int, deleteFrac float64) *EdgeStream {
	return workload.NewEdgeStream(seed, scale, deleteFrac)
}

// Edge is a directed graph edge.
type Edge = workload.Edge

// Symmetrize returns the undirected closure of an edge list (both
// directions, self-loops dropped).
func Symmetrize(edges []Edge) []Edge { return workload.Symmetrize(edges) }

// Graph is the adjacency interface the graph kernels accept; FGraph
// implements it (after EnsureIndex).
type Graph = graph.Graph

// PageRank runs iters pull-based PageRank iterations (damping 0.85) and
// returns the rank vector.
func PageRank(g Graph, iters int) []float64 { return graph.PageRank(g, iters) }

// ConnectedComponents labels each vertex with the smallest vertex id in
// its component.
func ConnectedComponents(g Graph) []uint32 { return graph.ConnectedComponents(g) }

// BC returns single-source betweenness-centrality dependency scores from
// src (Brandes' algorithm).
func BC(g Graph, src uint32) []float64 { return graph.BC(g, src) }

// BFS returns each vertex's BFS depth from src (-1 if unreachable).
func BFS(g Graph, src uint32) []int32 { return graph.BFS(g, src) }

// RNG is a deterministic splitmix64 random generator for workloads.
type RNG = workload.RNG

// NewRNG seeds a workload generator.
func NewRNG(seed uint64) *RNG { return workload.NewRNG(seed) }

// UniformKeys draws n uniform random keys in [1, 2^bits) — the paper's
// microbenchmark distribution at bits=40.
func UniformKeys(r *RNG, n, bits int) []uint64 { return workload.Uniform(r, n, bits) }

// RMATEdges samples n directed edges over 2^scale vertices from the R-MAT
// distribution the paper uses for graph insert streams.
func RMATEdges(r *RNG, n, scale int) []Edge {
	return workload.RMAT(r, n, scale, workload.DefaultRMAT())
}
